// Prepare-pipeline throughput benchmark: the parallel radix clean/orient
// path (graph/prepare.cpp) against a verbatim copy of the legacy serial
// pipeline it replaced, on the same raw edge lists. Reports edges/sec and
// the peak-RSS of each path (the old path materializes raw + cleaned +
// doubled undirected CSR; the new one consumes raw in place), plus the
// compressed-vs-raw adjacency crossover: bytes and simulated kernel time of
// the varint CMerge kernel against raw MergePath per dataset.
//
// Emits JSON so the perf trajectory is tracked across PRs; --check compares
// edges/sec against a checked-in baseline and fails on >25% regression (the
// CI prepare-throughput gate, mirroring bench/sim_overhead).
//
// Flags: --quick            smaller edge caps, CI-friendly runtimes
//        --out=PATH         write the JSON report to PATH
//        --check=PATH       compare against a baseline JSON, exit 1 on regression
//        --repeats=N        timing repeats per workload (default 3, best-of)
//        --threads=N        OMP threads for the parallel path (default: all)
#include <omp.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#if defined(__GLIBC__)
#include <malloc.h>  // malloc_trim; __GLIBC__ set by the <c*> headers above
#endif
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "framework/capacity.hpp"
#include "framework/registry.hpp"
#include "framework/runner.hpp"
#include "gen/paper_datasets.hpp"
#include "graph/csr.hpp"
#include "graph/orientation.hpp"
#include "graph/prepare.hpp"
#include "graph/stats.hpp"

namespace {

using namespace tcgpu;

// --- the pre-radix serial pipeline, kept verbatim as the speedup yardstick --
namespace serial_baseline {

graph::Coo clean_edges(const graph::Coo& raw) {
  std::vector<graph::Edge> edges;
  edges.reserve(raw.edges.size());
  for (const auto& [u, v] : raw.edges) {
    if (u == v) continue;  // self-loop
    if (u >= raw.num_vertices || v >= raw.num_vertices) {
      throw std::invalid_argument("clean_edges: vertex id out of range");
    }
    edges.emplace_back(std::min(u, v), std::max(u, v));
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  std::vector<graph::VertexId> remap(raw.num_vertices, graph::kInvalidVertex);
  graph::VertexId next = 0;
  for (const auto& [u, v] : edges) {
    if (remap[u] == graph::kInvalidVertex) remap[u] = 0;
    if (remap[v] == graph::kInvalidVertex) remap[v] = 0;
  }
  for (graph::VertexId v = 0; v < raw.num_vertices; ++v) {
    if (remap[v] != graph::kInvalidVertex) remap[v] = next++;
  }
  for (auto& [u, v] : edges) {
    u = remap[u];
    v = remap[v];
  }

  graph::Coo out;
  out.num_vertices = next;
  out.edges = std::move(edges);
  return out;
}

graph::Csr csr_from_pairs(graph::VertexId num_vertices,
                          std::vector<graph::Edge>& pairs) {
  std::vector<graph::EdgeIndex> row_ptr(
      static_cast<std::size_t>(num_vertices) + 1, 0);
  for (const auto& [u, v] : pairs) {
    (void)v;
    row_ptr[u + 1]++;
  }
  for (std::size_t i = 1; i < row_ptr.size(); ++i) row_ptr[i] += row_ptr[i - 1];
  std::vector<graph::VertexId> col(pairs.size());
  std::vector<graph::EdgeIndex> cursor(row_ptr.begin(), row_ptr.end() - 1);
  for (const auto& [u, v] : pairs) col[cursor[u]++] = v;
  for (graph::VertexId v = 0; v < num_vertices; ++v) {
    std::sort(col.begin() + row_ptr[v], col.begin() + row_ptr[v + 1]);
  }
  return graph::Csr(std::move(row_ptr), std::move(col));
}

graph::Csr build_undirected_csr(const graph::Coo& clean) {
  std::vector<graph::Edge> pairs;
  pairs.reserve(clean.edges.size() * 2);
  for (const auto& [u, v] : clean.edges) {
    pairs.emplace_back(u, v);
    pairs.emplace_back(v, u);
  }
  return csr_from_pairs(clean.num_vertices, pairs);
}

/// The full legacy prepare: clean -> undirected CSR -> stats -> orient ->
/// DAG stats. Identical composition to the pre-overhaul framework runner.
graph::Csr prepare(const graph::Coo& raw, graph::GraphStats& stats) {
  const graph::Coo clean = clean_edges(raw);
  const graph::Csr undirected = build_undirected_csr(clean);
  stats = graph::compute_stats(undirected);
  auto oriented =
      graph::orient(undirected, graph::OrientationPolicy::kByDegree);
  graph::fold_dag_stats(oriented.dag, stats);
  return std::move(oriented.dag);
}

}  // namespace serial_baseline

struct PrepareResult {
  std::string name;
  std::uint64_t edges = 0;    ///< raw input edges per run
  double seconds = 0.0;       ///< best-of-repeats wall clock
  double peak_rss_mb = 0.0;   ///< watermark delta over the first (cold) run
  double edges_per_sec() const {
    return static_cast<double>(edges) / seconds;
  }
};

/// Times one prepare closure best-of-`repeats`. `setup` runs before each
/// repeat outside the measured window (the destructive path needs its input
/// restaged; real callers move theirs in for free, so neither the clock nor
/// the RSS reading should see the restage). The peak-RSS reading is the
/// first run's watermark delta over the pre-run RSS, taken after trimming
/// the allocator — otherwise pages glibc retained from an earlier workload
/// both raise the floor and silently absorb this run's allocations.
template <class Setup, class Fn>
PrepareResult time_prepare(const std::string& name, std::uint64_t raw_edges,
                           int repeats, Setup&& setup, Fn&& run) {
  PrepareResult r;
  r.name = name;
  r.edges = raw_edges;
  r.seconds = 1e100;
  for (int i = 0; i < repeats; ++i) {
    setup();
    double floor_mb = 0.0;
    if (i == 0) {
#if defined(__GLIBC__)
      malloc_trim(0);
#endif
      framework::reset_peak_rss();
      floor_mb = framework::current_rss_mb();
    }
    const auto t0 = std::chrono::steady_clock::now();
    run();
    const auto t1 = std::chrono::steady_clock::now();
    if (i == 0) r.peak_rss_mb = framework::peak_rss_mb() - floor_mb;
    r.seconds =
        std::min(r.seconds, std::chrono::duration<double>(t1 - t0).count());
  }
  return r;
}

struct CrossoverRow {
  std::string dataset;
  std::uint64_t raw_bytes = 0;         ///< 4 B/neighbor adjacency
  std::uint64_t compressed_bytes = 0;  ///< varint delta stream
  double mergepath_ms = 0.0;           ///< simulated kernel time, raw CSR
  double cmerge_ms = 0.0;              ///< simulated kernel time, compressed
};

std::string to_json(const std::vector<PrepareResult>& prepares,
                    const std::vector<CrossoverRow>& crossover, int threads) {
  std::ostringstream os;
  os << "{\n  \"bench\": \"prepare_throughput\",\n  \"threads\": " << threads
     << ",\n  \"workloads\": [\n";
  for (std::size_t i = 0; i < prepares.size(); ++i) {
    const auto& r = prepares[i];
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"edges\": %llu, \"seconds\": %.6f, "
                  "\"edges_per_sec\": %.0f, \"peak_rss_mb\": %.1f}%s\n",
                  r.name.c_str(), static_cast<unsigned long long>(r.edges),
                  r.seconds, r.edges_per_sec(), r.peak_rss_mb,
                  i + 1 < prepares.size() ? "," : "");
    os << buf;
  }
  os << "  ],\n  \"crossover\": [\n";
  for (std::size_t i = 0; i < crossover.size(); ++i) {
    const auto& c = crossover[i];
    char buf[320];
    std::snprintf(buf, sizeof buf,
                  "    {\"dataset\": \"%s\", \"raw_bytes\": %llu, "
                  "\"compressed_bytes\": %llu, \"mergepath_ms\": %.4f, "
                  "\"cmerge_ms\": %.4f}%s\n",
                  c.dataset.c_str(),
                  static_cast<unsigned long long>(c.raw_bytes),
                  static_cast<unsigned long long>(c.compressed_bytes),
                  c.mergepath_ms, c.cmerge_ms,
                  i + 1 < crossover.size() ? "," : "");
    os << buf;
  }
  os << "  ]\n}\n";
  return os.str();
}

/// Pulls "name" -> edges_per_sec pairs out of a prepare_throughput JSON
/// report. Deliberately tiny: the format is produced by to_json above.
bool parse_baseline(const std::string& path,
                    std::vector<std::pair<std::string, double>>& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    const auto name_at = line.find("\"name\": \"");
    const auto eps_at = line.find("\"edges_per_sec\": ");
    if (name_at == std::string::npos || eps_at == std::string::npos) continue;
    const auto name_begin = name_at + 9;
    const auto name_end = line.find('"', name_begin);
    if (name_end == std::string::npos) continue;
    const double eps = std::atof(line.c_str() + eps_at + 17);
    out.emplace_back(line.substr(name_begin, name_end - name_begin), eps);
  }
  return !out.empty();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  int repeats = 3;
  int threads = omp_get_max_threads();
  std::string out_path;
  std::string check_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--check=", 0) == 0) {
      check_path = arg.substr(8);
    } else if (arg.rfind("--repeats=", 0) == 0) {
      repeats = std::atoi(arg.c_str() + 10);
      if (repeats < 1) repeats = 1;
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = std::atoi(arg.c_str() + 10);
      if (threads < 1) threads = 1;
    } else {
      std::cerr << "unknown flag: " << arg
                << " (valid: --quick --out=PATH --check=PATH --repeats=N "
                   "--threads=N)\n";
      return 2;
    }
  }
  omp_set_num_threads(threads);

  // The largest stand-in the edge cap admits: Com-Orkut's generator output
  // has the heaviest skew, the most duplicate collisions, and the biggest
  // working set of the suite — the case the pipeline exists for.
  const std::uint64_t cap = quick ? 200'000 : 2'000'000;
  const auto& spec = gen::dataset_by_name("Com-Orkut");
  const graph::Coo raw = gen::generate_dataset(spec, cap, 42);
  const auto raw_edges = static_cast<std::uint64_t>(raw.edges.size());

  std::vector<PrepareResult> prepares;
  graph::Csr serial_dag;
  {
    graph::GraphStats stats;
    prepares.push_back(time_prepare(
        "serial_prepare", raw_edges, repeats, [] {},
        [&] { serial_dag = serial_baseline::prepare(raw, stats); }));
  }
  graph::Csr parallel_dag;
  {
    graph::Coo staged;
    prepares.push_back(time_prepare(
        "parallel_prepare", raw_edges, repeats, [&] { staged = raw; },
        [&] {
          auto prepared = graph::prepare_dag(
              std::move(staged), graph::OrientationPolicy::kByDegree);
          parallel_dag = std::move(prepared.dag);
        }));
  }
  if (!(serial_dag == parallel_dag)) {
    std::cerr << "parallel prepare diverged from the serial baseline\n";
    return 1;
  }
  const double speedup = prepares[0].seconds / prepares[1].seconds;
  const double rss_drop =
      prepares[0].peak_rss_mb > 0.0
          ? 1.0 - prepares[1].peak_rss_mb / prepares[0].peak_rss_mb
          : 0.0;

  // Compressed-vs-raw crossover: varint decode trades extra compute for a
  // smaller adjacency stream, so CMerge gains on dense small-gap rows and
  // loses where gaps are wide. Sweep the suite's density range.
  const std::vector<std::string> sweep =
      quick ? std::vector<std::string>{"As-Caida", "Com-Orkut"}
            : std::vector<std::string>{"As-Caida", "Soc-Pokec", "Com-Orkut",
                                       "Com-Friendster"};
  const auto mergepath = framework::make_algorithm("MergePath");
  const auto cmerge = framework::make_algorithm("CMerge");
  const simt::GpuSpec gpu = simt::GpuSpec::v100();
  std::vector<CrossoverRow> crossover;
  for (const auto& name : sweep) {
    const std::uint64_t kernel_cap = quick ? 50'000 : 100'000;
    const auto pg = framework::prepare_dataset(gen::dataset_by_name(name),
                                               kernel_cap, 42);
    CrossoverRow row;
    row.dataset = name;
    row.raw_bytes = static_cast<std::uint64_t>(pg.dag.num_edges()) * 4;
    row.compressed_bytes =
        graph::CompressedCsr::compress(pg.dag).adjacency_bytes();
    const auto mp = framework::run_algorithm(*mergepath, pg, gpu);
    const auto cm = framework::run_algorithm(*cmerge, pg, gpu);
    if (!mp.valid || !cm.valid) {
      std::cerr << "kernel validation failed on " << name << '\n';
      return 1;
    }
    row.mergepath_ms = mp.result.total.time_ms;
    row.cmerge_ms = cm.result.total.time_ms;
    crossover.push_back(row);
  }

  std::printf("%-18s %12s %10s %14s %12s\n", "workload", "edges", "sec",
              "edges/sec", "peak_rss_mb");
  for (const auto& r : prepares) {
    std::printf("%-18s %12llu %10.4f %14.0f %12.1f\n", r.name.c_str(),
                static_cast<unsigned long long>(r.edges), r.seconds,
                r.edges_per_sec(), r.peak_rss_mb);
  }
  std::printf("speedup %.2fx  peak-RSS drop %.0f%%  (threads=%d)\n", speedup,
              rss_drop * 100.0, threads);
  std::printf("%-16s %12s %12s %8s %14s %12s\n", "dataset", "raw_B", "cmp_B",
              "ratio", "mergepath_ms", "cmerge_ms");
  for (const auto& c : crossover) {
    std::printf("%-16s %12llu %12llu %8.2f %14.4f %12.4f\n", c.dataset.c_str(),
                static_cast<unsigned long long>(c.raw_bytes),
                static_cast<unsigned long long>(c.compressed_bytes),
                static_cast<double>(c.raw_bytes) /
                    static_cast<double>(std::max<std::uint64_t>(
                        1, c.compressed_bytes)),
                c.mergepath_ms, c.cmerge_ms);
  }

  const std::string json = to_json(prepares, crossover, threads);
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << json;
    if (!out) {
      std::cerr << "failed to write " << out_path << '\n';
      return 1;
    }
    std::cerr << "wrote " << out_path << '\n';
  }

  if (!check_path.empty()) {
    std::vector<std::pair<std::string, double>> baseline;
    if (!parse_baseline(check_path, baseline)) {
      std::cerr << "failed to parse baseline " << check_path << '\n';
      return 2;
    }
    constexpr double kAllowedRegression = 0.25;
    bool ok = true;
    for (const auto& [name, base_eps] : baseline) {
      const auto it =
          std::find_if(prepares.begin(), prepares.end(),
                       [&](const auto& r) { return r.name == name; });
      if (it == prepares.end()) {
        std::cerr << "baseline workload missing from run: " << name << '\n';
        ok = false;
        continue;
      }
      const double floor = base_eps * (1.0 - kAllowedRegression);
      const bool pass = it->edges_per_sec() >= floor;
      std::fprintf(
          stderr,
          "check %-18s %14.0f e/s vs baseline %14.0f (floor %14.0f) %s\n",
          name.c_str(), it->edges_per_sec(), base_eps, floor,
          pass ? "ok" : "REGRESSED");
      ok = ok && pass;
    }
    if (!ok) return 1;
  }
  return 0;
}
