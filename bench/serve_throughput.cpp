// Closed-loop load generator for serve::QueryService.
//
// Two phases. Warmup issues one query per distinct dataset serially, in
// fixed order — this pins the service's decision table (sticky picks), so
// selector decisions and triangle counts are reproducible run-to-run no
// matter how the timed phase's threads interleave. The table is printed,
// and --check-picks=ds:algo,... turns it into a CI regression gate (exit 3
// on any drift). The timed phase then runs N closed-loop clients
// round-robining the same datasets for a fixed number of queries, and
// reports p50/p95/p99 end-to-end latency and QPS.
//
// Try: serve_throughput --datasets=As-Caida,Soc-Pokec,Com-Orkut \
//        --clients=4 --queries=120
#include <algorithm>
#include <atomic>
#include <chrono>
#include <iostream>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "framework/engine.hpp"
#include "framework/report.hpp"
#include "serve/service.hpp"

namespace {

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tcgpu;
  framework::BenchOptions opt;
  try {
    opt = framework::BenchOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }

  std::vector<std::string> datasets = opt.datasets;
  if (datasets.empty()) {
    for (const auto& spec : gen::paper_datasets()) datasets.push_back(spec.name);
  }
  const std::size_t clients = opt.clients == 0 ? 4 : opt.clients;
  const std::uint64_t total_queries =
      opt.queries == 0 ? 16 * datasets.size() : opt.queries;

  framework::Engine engine(opt);
  serve::QueryService::Config cfg;
  cfg.workers = opt.jobs == 0 ? 2 : opt.jobs;
  serve::QueryService service(engine, cfg);

  // --- Phase 1: serial warmup pins the decision table --------------------
  framework::ResultTable picks({"dataset", "algorithm", "modeled_ms",
                                "measured_ms", "triangles", "valid"});
  for (const auto& name : datasets) {
    serve::QueryRequest req;
    req.dataset = name;
    auto reply = service.submit(std::move(req)).get();
    if (reply.status != serve::QueryStatus::kOk) {
      std::cerr << "warmup query for '" << name
                << "' failed: " << to_string(reply.status) << " "
                << reply.error << '\n';
      return 2;
    }
    picks.add_row({name, reply.algorithm,
                   framework::ResultTable::fmt(reply.modeled.modeled_ms, 4),
                   framework::ResultTable::fmt(reply.stats.time_ms, 4),
                   std::to_string(reply.triangles),
                   reply.valid ? "yes" : "NO"});
  }
  framework::emit(picks, opt, std::cout,
                  "Selector decision table (serial warmup, seed " +
                      std::to_string(opt.seed) + ", edge cap " +
                      std::to_string(opt.max_edges) + ")");

  if (!opt.check_picks.empty()) {
    // "dataset:algorithm,..." — assert against the latched table.
    std::map<std::string, std::string> table;
    for (const auto& [key, algo] : service.decision_table()) table[key] = algo;
    bool drift = false;
    std::stringstream ss(opt.check_picks);
    std::string item;
    while (std::getline(ss, item, ',')) {
      const auto colon = item.rfind(':');
      if (colon == std::string::npos) {
        std::cerr << "bad --check-picks entry '" << item
                  << "' (expected dataset:algorithm)\n";
        return 2;
      }
      const std::string ds = item.substr(0, colon);
      const std::string want = item.substr(colon + 1);
      const auto it = table.find(ds);
      const std::string got = it == table.end() ? "<none>" : it->second;
      if (got != want) {
        std::cerr << "PICK DRIFT: " << ds << " -> " << got << " (pinned "
                  << want << ")\n";
        drift = true;
      }
    }
    if (drift) return 3;
    std::cout << "# pinned picks hold\n";
  }

  // --- Phase 2: closed-loop timed run ------------------------------------
  std::atomic<std::uint64_t> next{0};
  std::vector<std::vector<double>> latencies(clients);
  std::atomic<std::uint64_t> not_ok{0};
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (std::uint64_t i = next.fetch_add(1); i < total_queries;
             i = next.fetch_add(1)) {
          serve::QueryRequest req;
          req.dataset = datasets[i % datasets.size()];
          auto reply = service.submit(std::move(req)).get();
          if (reply.status != serve::QueryStatus::kOk || !reply.valid) {
            not_ok.fetch_add(1);
          }
          latencies[c].push_back(reply.trace.total_ms());
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());

  const auto counters = service.counters();
  framework::ResultTable summary({"clients", "queries", "not_ok", "batches",
                                  "batched", "p50_ms", "p95_ms", "p99_ms",
                                  "qps"});
  summary.add_row(
      {std::to_string(clients), std::to_string(all.size()),
       std::to_string(not_ok.load()), std::to_string(counters.batches),
       std::to_string(counters.batched),
       framework::ResultTable::fmt(percentile(all, 0.50), 3),
       framework::ResultTable::fmt(percentile(all, 0.95), 3),
       framework::ResultTable::fmt(percentile(all, 0.99), 3),
       framework::ResultTable::fmt(
           wall_s > 0.0 ? static_cast<double>(all.size()) / wall_s : 0.0, 1)});
  framework::emit(summary, opt, std::cout,
                  "Closed-loop throughput (" + std::to_string(clients) +
                      " clients, " + std::to_string(total_queries) +
                      " queries)");

  service.shutdown();
  if (not_ok.load() != 0) return 1;
  return engine.exit_code();
}
