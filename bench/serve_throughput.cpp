// Closed-loop load generator for serve::QueryService — and, with --fleet,
// for the fleet::FleetService stack on top of it.
//
// Legacy mode (no --fleet): two phases. Warmup issues one query per distinct
// dataset serially, in fixed order — this pins the service's decision table
// (sticky picks), so selector decisions and triangle counts are reproducible
// run-to-run no matter how the timed phase's threads interleave. The table
// is printed, and --check-picks=ds:algo,... turns it into a CI regression
// gate (exit 3 on any drift). The timed phase then runs N closed-loop
// clients round-robining the same datasets for a fixed number of queries,
// and reports p50/p95/p99 end-to-end latency and QPS.
//
// Fleet mode (--fleet): sweeps the modeled device count (M = 1,2,4,8, or
// just --gpus=N) running closed-loop mixed traffic — a "small" tenant on
// light graphs, a "huge" tenant on the heavyweights, a "mut" tenant
// committing mutation batches — through scheduler -> service -> fleet.
// Warmup pins both the decision table and the placement table;
// --check-placements=ds:placement,... gates placements like --check-picks
// (exit 3 on drift; requires --gpus since placements depend on M). At M=1
// the fleet's warmup picks and counts are asserted bit-identical to a plain
// backend-less QueryService (exit 4 on mismatch). Reports per-M utilization,
// QPS and latency percentiles, plus per-tenant goodput.
//
// Try: serve_throughput --datasets=As-Caida,Soc-Pokec,Com-Orkut
//        --clients=4 --queries=120
//      serve_throughput --fleet --gpus=4 --queries=120
#include <algorithm>
#include <atomic>
#include <chrono>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "fleet/service.hpp"
#include "framework/engine.hpp"
#include "framework/report.hpp"
#include "serve/service.hpp"

namespace {

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// Parses "key:value,..." gate strings (--check-placements). Splits at the
/// FIRST colon — dataset names contain none, but placement values do
/// ("shard4:range"). Returns false on a malformed entry.
bool parse_gate(const std::string& spec,
                std::vector<std::pair<std::string, std::string>>* out) {
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const auto colon = item.find(':');
    if (colon == std::string::npos) return false;
    out->emplace_back(item.substr(0, colon), item.substr(colon + 1));
  }
  return true;
}

/// One closed-loop tenant of the fleet workload.
struct TenantLoad {
  std::string name;
  std::vector<std::string> datasets;  ///< round-robined (count queries)
  std::uint64_t queries = 0;
  std::size_t threads = 1;
  bool mutate = false;  ///< issue mutation batches instead of counts
};

int fleet_main(const tcgpu::framework::BenchOptions& opt) {
  using namespace tcgpu;

  std::vector<std::uint32_t> fleet_sizes;
  if (opt.gpus != 0) {
    fleet_sizes.push_back(opt.gpus);
  } else {
    fleet_sizes = {1, 2, 4, 8};
  }
  if (!opt.check_placements.empty() && opt.gpus == 0) {
    std::cerr << "--check-placements requires --gpus=N (placements depend on "
                 "the fleet size)\n";
    return 2;
  }
  if (opt.hosts > 1 && opt.gpus == 0) {
    std::cerr << "--hosts requires --gpus=N in fleet mode (every swept fleet "
                 "size must be a multiple of the host count)\n";
    return 2;
  }
  if (opt.hosts > 1 && opt.gpus % opt.hosts != 0) {
    std::cerr << "--gpus must be a multiple of --hosts, got " << opt.gpus
              << " over " << opt.hosts << '\n';
    return 2;
  }

  // Mixed traffic shape. Defaults pick light graphs for the small tenant,
  // heavyweights for the huge one, and a mutating dataset that is NOT in
  // either pool, so churn-driven invalidation never perturbs the pinned
  // pick/placement tables. --datasets overrides both count pools (first
  // half small, second half huge) and disables the mutation tenant.
  std::vector<std::string> smalls, huges;
  std::string mut_dataset;
  if (opt.datasets.empty()) {
    smalls = {"As-Caida", "Email-EuAll"};
    huges = {"Soc-Pokec", "Com-Orkut"};
    mut_dataset = "Wiki-Talk";
  } else {
    const std::size_t half = (opt.datasets.size() + 1) / 2;
    smalls.assign(opt.datasets.begin(), opt.datasets.begin() + half);
    huges.assign(opt.datasets.begin() + half, opt.datasets.end());
  }
  std::vector<std::string> warmup_order = smalls;
  warmup_order.insert(warmup_order.end(), huges.begin(), huges.end());

  const std::size_t clients = opt.clients == 0 ? 4 : opt.clients;
  const std::uint64_t total_queries = opt.queries == 0 ? 120 : opt.queries;

  // M=1 reference: the plain backend-less service's warmup picks/counts,
  // for the bit-identity gate.
  std::map<std::string, std::pair<std::string, std::uint64_t>> reference;
  {
    framework::Engine ref_engine(opt);
    serve::QueryService::Config rc;
    rc.workers = 1;
    serve::QueryService ref_service(ref_engine, rc);
    for (const auto& name : warmup_order) {
      serve::QueryRequest req;
      req.dataset = name;
      auto reply = ref_service.submit(std::move(req)).get();
      if (reply.status != serve::QueryStatus::kOk) {
        std::cerr << "reference warmup for '" << name
                  << "' failed: " << to_string(reply.status) << " "
                  << reply.error << '\n';
        return 2;
      }
      reference[name] = {reply.algorithm, reply.triangles};
    }
    ref_service.shutdown();
  }

  framework::ResultTable sweep({"devices", "queries", "ok", "shed", "util",
                                "qps", "p50_ms", "p95_ms", "p99_ms",
                                "sharded", "cache_hits"});
  framework::ResultTable goodput({"devices", "tenant", "submitted", "ok",
                                  "shed", "expired", "errors"});
  int exit_status = 0;

  for (const std::uint32_t devices : fleet_sizes) {
    framework::Engine engine(opt);
    fleet::Fleet::Config fc;
    fc.devices = devices;
    if (opt.hosts > 1) {
      // Two-level fleet: NVLink within a host, --interconnect (default
      // ib-edr) between hosts. Placements that spill past one host's
      // devices now pay the network and print with an ":<h>h" suffix.
      fc.hosts = opt.hosts;
      if (!opt.interconnect.empty()) {
        fc.inter = simt::interconnect_spec_from_string(opt.interconnect);
      }
    }
    fleet::Fleet fleet(engine, fc);
    fleet::FleetService::Config sc;
    sc.dispatchers = clients;
    sc.service.workers = opt.jobs == 0 ? 2 : opt.jobs;
    fleet::FleetService service(engine, fleet, sc);

    // --- serial warmup: pins picks and placements ------------------------
    bool identical = true;
    for (const auto& name : warmup_order) {
      serve::QueryRequest req;
      req.dataset = name;
      auto reply = service.submit(std::move(req)).get();
      if (reply.status != serve::QueryStatus::kOk) {
        std::cerr << "fleet warmup for '" << name << "' (M=" << devices
                  << ") failed: " << to_string(reply.status) << " "
                  << reply.error << '\n';
        return 2;
      }
      const auto& [ref_algo, ref_triangles] = reference[name];
      if (reply.algorithm != ref_algo || reply.triangles != ref_triangles) {
        if (devices == 1) {
          std::cerr << "M=1 DIVERGENCE: " << name << " -> " << reply.algorithm
                    << "/" << reply.triangles << " vs plain service "
                    << ref_algo << "/" << ref_triangles << '\n';
          identical = false;
        }
      }
    }
    if (!identical) return 4;

    if (devices == fleet_sizes.back() || opt.gpus != 0) {
      framework::ResultTable placements({"dataset", "placement"});
      for (const auto& [key, placement] : fleet.placement_table()) {
        placements.add_row({key, placement});
      }
      framework::emit(placements, opt, std::cout,
                      "Placement table (M=" + std::to_string(devices) +
                          ", serial warmup)");
    }

    if (!opt.check_placements.empty()) {
      std::map<std::string, std::string> table;
      for (const auto& [key, placement] : fleet.placement_table()) {
        table[key] = placement;
      }
      std::vector<std::pair<std::string, std::string>> wanted;
      if (!parse_gate(opt.check_placements, &wanted)) {
        std::cerr << "bad --check-placements entry (expected "
                     "dataset:placement,...)\n";
        return 2;
      }
      bool drift = false;
      for (const auto& [ds, want] : wanted) {
        const auto it = table.find(ds);
        const std::string got = it == table.end() ? "<none>" : it->second;
        if (got != want) {
          std::cerr << "PLACEMENT DRIFT: " << ds << " -> " << got
                    << " (pinned " << want << ")\n";
          drift = true;
        }
      }
      if (drift) return 3;
      std::cout << "# pinned placements hold\n";
    }

    // --- closed-loop mixed-traffic timed phase ---------------------------
    std::vector<TenantLoad> tenants;
    {
      TenantLoad small;
      small.name = "small";
      small.datasets = smalls;
      small.queries = total_queries * 6 / 10;
      small.threads = std::max<std::size_t>(1, clients / 2);
      tenants.push_back(std::move(small));
      if (!huges.empty()) {
        TenantLoad huge;
        huge.name = "huge";
        huge.datasets = huges;
        huge.queries = total_queries * 3 / 10;
        huge.threads = std::max<std::size_t>(1, clients / 4);
        tenants.push_back(std::move(huge));
      }
      if (!mut_dataset.empty()) {
        TenantLoad mut;
        mut.name = "mut";
        mut.datasets = {mut_dataset};
        mut.queries =
            std::max<std::uint64_t>(1, total_queries / 10);
        mut.threads = 1;
        mut.mutate = true;
        tenants.push_back(std::move(mut));
      }
    }

    std::vector<double> latencies;
    std::mutex lat_mu;
    std::atomic<std::uint64_t> not_ok{0};
    const auto t0 = std::chrono::steady_clock::now();
    {
      std::vector<std::thread> threads;
      for (const TenantLoad& tenant : tenants) {
        auto issued = std::make_shared<std::atomic<std::uint64_t>>(0);
        for (std::size_t c = 0; c < tenant.threads; ++c) {
          threads.emplace_back([&, issued] {
            std::vector<double> local;
            for (std::uint64_t i = issued->fetch_add(1); i < tenant.queries;
                 i = issued->fetch_add(1)) {
              serve::QueryRequest req;
              req.tenant = tenant.name;
              req.dataset = tenant.datasets[i % tenant.datasets.size()];
              if (tenant.mutate) {
                // Deterministic growth batch: fresh edges each round, so
                // every commit is effective and bumps the version.
                const graph::VertexId base = 50'000 +
                    static_cast<graph::VertexId>(i) * 8;
                for (graph::VertexId k = 0; k < 8; ++k) {
                  req.insert_edges.push_back(
                      {static_cast<graph::VertexId>(k % 97), base + k});
                }
              }
              const auto start = std::chrono::steady_clock::now();
              auto reply = service.submit(std::move(req)).get();
              const double ms = std::chrono::duration<double, std::milli>(
                                    std::chrono::steady_clock::now() - start)
                                    .count();
              if (reply.status != serve::QueryStatus::kOk) not_ok.fetch_add(1);
              local.push_back(ms);
            }
            std::lock_guard lk(lat_mu);
            latencies.insert(latencies.end(), local.begin(), local.end());
          });
        }
      }
      for (auto& t : threads) t.join();
    }
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();

    std::sort(latencies.begin(), latencies.end());
    double busy_ms = 0.0;
    for (const auto& slot : fleet.slots()) busy_ms += slot.busy_ms;
    const double util =
        wall_ms > 0.0 ? busy_ms / (static_cast<double>(devices) * wall_ms)
                      : 0.0;
    const auto fcnt = fleet.counters();
    std::uint64_t ok = 0, shed = 0;
    for (const auto& [tenant, ts] : service.tenant_stats()) {
      ok += ts.ok;
      shed += ts.shed;
      goodput.add_row({std::to_string(devices), tenant,
                       std::to_string(ts.submitted), std::to_string(ts.ok),
                       std::to_string(ts.shed), std::to_string(ts.expired),
                       std::to_string(ts.errors)});
    }
    sweep.add_row(
        {std::to_string(devices), std::to_string(latencies.size()),
         std::to_string(ok), std::to_string(shed),
         framework::ResultTable::fmt(util, 3),
         framework::ResultTable::fmt(
             wall_ms > 0.0
                 ? static_cast<double>(latencies.size()) * 1000.0 / wall_ms
                 : 0.0,
             1),
         framework::ResultTable::fmt(percentile(latencies, 0.50), 3),
         framework::ResultTable::fmt(percentile(latencies, 0.95), 3),
         framework::ResultTable::fmt(percentile(latencies, 0.99), 3),
         std::to_string(fcnt.sharded_runs), std::to_string(fcnt.cache_hits)});

    service.shutdown();
    if (not_ok.load() != 0) exit_status = 1;
    if (!engine.all_valid()) exit_status = 1;
  }

  framework::emit(sweep, opt, std::cout,
                  "Fleet closed-loop sweep (" + std::to_string(clients) +
                      " clients, " + std::to_string(total_queries) +
                      " queries per M, mixed small/huge/mut traffic)");
  framework::emit(goodput, opt, std::cout, "Per-tenant goodput");
  return exit_status;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tcgpu;
  framework::BenchOptions opt;
  try {
    opt = framework::BenchOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }
  if (opt.fleet) return fleet_main(opt);

  std::vector<std::string> datasets = opt.datasets;
  if (datasets.empty()) {
    for (const auto& spec : gen::paper_datasets()) datasets.push_back(spec.name);
  }
  const std::size_t clients = opt.clients == 0 ? 4 : opt.clients;
  const std::uint64_t total_queries =
      opt.queries == 0 ? 16 * datasets.size() : opt.queries;

  framework::Engine engine(opt);
  serve::QueryService::Config cfg;
  cfg.workers = opt.jobs == 0 ? 2 : opt.jobs;
  serve::QueryService service(engine, cfg);

  // --- Phase 1: serial warmup pins the decision table --------------------
  framework::ResultTable picks({"dataset", "algorithm", "modeled_ms",
                                "measured_ms", "triangles", "valid"});
  for (const auto& name : datasets) {
    serve::QueryRequest req;
    req.dataset = name;
    auto reply = service.submit(std::move(req)).get();
    if (reply.status != serve::QueryStatus::kOk) {
      std::cerr << "warmup query for '" << name
                << "' failed: " << to_string(reply.status) << " "
                << reply.error << '\n';
      return 2;
    }
    picks.add_row({name, reply.algorithm,
                   framework::ResultTable::fmt(reply.modeled.modeled_ms, 4),
                   framework::ResultTable::fmt(reply.stats.time_ms, 4),
                   std::to_string(reply.triangles),
                   reply.valid ? "yes" : "NO"});
  }
  framework::emit(picks, opt, std::cout,
                  "Selector decision table (serial warmup, seed " +
                      std::to_string(opt.seed) + ", edge cap " +
                      std::to_string(opt.max_edges) + ")");

  if (!opt.check_picks.empty()) {
    // "dataset:algorithm,..." — assert against the latched table.
    std::map<std::string, std::string> table;
    for (const auto& [key, algo] : service.decision_table()) table[key] = algo;
    bool drift = false;
    std::stringstream ss(opt.check_picks);
    std::string item;
    while (std::getline(ss, item, ',')) {
      const auto colon = item.rfind(':');
      if (colon == std::string::npos) {
        std::cerr << "bad --check-picks entry '" << item
                  << "' (expected dataset:algorithm)\n";
        return 2;
      }
      const std::string ds = item.substr(0, colon);
      const std::string want = item.substr(colon + 1);
      const auto it = table.find(ds);
      const std::string got = it == table.end() ? "<none>" : it->second;
      if (got != want) {
        std::cerr << "PICK DRIFT: " << ds << " -> " << got << " (pinned "
                  << want << ")\n";
        drift = true;
      }
    }
    if (drift) return 3;
    std::cout << "# pinned picks hold\n";
  }

  // --- Phase 2: closed-loop timed run ------------------------------------
  std::atomic<std::uint64_t> next{0};
  std::vector<std::vector<double>> latencies(clients);
  std::atomic<std::uint64_t> not_ok{0};
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (std::uint64_t i = next.fetch_add(1); i < total_queries;
             i = next.fetch_add(1)) {
          serve::QueryRequest req;
          req.dataset = datasets[i % datasets.size()];
          auto reply = service.submit(std::move(req)).get();
          if (reply.status != serve::QueryStatus::kOk || !reply.valid) {
            not_ok.fetch_add(1);
          }
          latencies[c].push_back(reply.trace.total_ms());
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());

  const auto counters = service.counters();
  framework::ResultTable summary({"clients", "queries", "not_ok", "batches",
                                  "batched", "p50_ms", "p95_ms", "p99_ms",
                                  "qps"});
  summary.add_row(
      {std::to_string(clients), std::to_string(all.size()),
       std::to_string(not_ok.load()), std::to_string(counters.batches),
       std::to_string(counters.batched),
       framework::ResultTable::fmt(percentile(all, 0.50), 3),
       framework::ResultTable::fmt(percentile(all, 0.95), 3),
       framework::ResultTable::fmt(percentile(all, 0.99), 3),
       framework::ResultTable::fmt(
           wall_s > 0.0 ? static_cast<double>(all.size()) / wall_s : 0.0, 1)});
  framework::emit(summary, opt, std::cout,
                  "Closed-loop throughput (" + std::to_string(clients) +
                      " clients, " + std::to_string(total_queries) +
                      " queries)");

  service.shutdown();
  if (not_ok.load() != 0) return 1;
  return engine.exit_code();
}
