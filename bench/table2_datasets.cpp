// Table II: the 19 evaluation datasets with vertices / edges / avg degree.
// Prints the paper's target numbers next to the *achieved* statistics of the
// synthetic stand-ins (computed from the generated graphs, not copied), plus
// the downscale factor applied by the edge cap. Stats and reference counts
// come from the engine's prepared-graph cache — the same pipeline (and the
// same cache entries) the figure benches consume.
#include <iostream>

#include "framework/engine.hpp"
#include "framework/report.hpp"

int main(int argc, char** argv) {
  using namespace tcgpu;
  framework::BenchOptions opt;
  try {
    opt = framework::BenchOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }

  framework::Engine engine(opt);
  framework::ResultTable table({"dataset", "family", "paper_V", "paper_E",
                                "paper_deg", "scale", "gen_V", "gen_E", "gen_deg",
                                "triangles", "prepare_ms", "peak_rss_mb"});
  for (const auto& ds : gen::paper_datasets()) {
    const double scale = gen::dataset_scale(ds, opt.max_edges);
    const auto pg = engine.prepare(ds);
    table.add_row({ds.name, gen::to_string(ds.family),
                   std::to_string(ds.paper_vertices), std::to_string(ds.paper_edges),
                   framework::ResultTable::fmt(ds.paper_avg_degree, 1),
                   framework::ResultTable::fmt(scale, 4),
                   std::to_string(pg->stats.num_vertices),
                   std::to_string(pg->stats.num_undirected_edges),
                   framework::ResultTable::fmt(pg->stats.avg_degree, 1),
                   std::to_string(pg->reference_triangles),
                   framework::ResultTable::fmt(pg->prepare_seconds * 1000.0, 2),
                   framework::ResultTable::fmt(pg->peak_rss_mb, 1)});
  }
  const framework::CapacityReport capacity{framework::peak_rss_mb(),
                                           engine.counters().bytes_uploaded};
  framework::emit(table, opt, std::cout, capacity,
                  "Table II: datasets (paper targets vs generated stand-ins, "
                  "edge cap = " +
                      std::to_string(opt.max_edges) + ")");
  return 0;
}
