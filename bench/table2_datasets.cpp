// Table II: the 19 evaluation datasets with vertices / edges / avg degree.
// Prints the paper's target numbers next to the *achieved* statistics of the
// synthetic stand-ins (computed from the generated graphs, not copied), plus
// the downscale factor applied by the edge cap.
#include <iostream>

#include "framework/options.hpp"
#include "framework/runner.hpp"
#include "framework/table.hpp"
#include "graph/builder.hpp"

int main(int argc, char** argv) {
  using namespace tcgpu;
  framework::BenchOptions opt;
  try {
    opt = framework::BenchOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }

  std::cout << "== Table II: datasets (paper targets vs generated stand-ins"
            << ", edge cap = " << opt.max_edges << ") ==\n";
  framework::ResultTable table({"dataset", "family", "paper_V", "paper_E",
                                "paper_deg", "scale", "gen_V", "gen_E", "gen_deg",
                                "triangles"});
  for (const auto& ds : gen::paper_datasets()) {
    const double scale = gen::dataset_scale(ds, opt.max_edges);
    const graph::Coo raw = gen::generate_dataset(ds, opt.max_edges, opt.seed);
    const graph::Csr und = graph::build_undirected_csr(graph::clean_edges(raw));
    const graph::GraphStats s = graph::compute_stats(und);
    const auto dag = graph::orient(und, graph::OrientationPolicy::kByDegree).dag;
    table.add_row({ds.name, gen::to_string(ds.family),
                   std::to_string(ds.paper_vertices), std::to_string(ds.paper_edges),
                   framework::ResultTable::fmt(ds.paper_avg_degree, 1),
                   framework::ResultTable::fmt(scale, 4),
                   std::to_string(s.num_vertices),
                   std::to_string(s.num_undirected_edges),
                   framework::ResultTable::fmt(s.avg_degree, 1),
                   std::to_string(graph::count_triangles_forward(dag))});
  }
  if (opt.csv) {
    table.print_csv(std::cout);
  } else {
    table.print_aligned(std::cout);
  }
  return 0;
}
