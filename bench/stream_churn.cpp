// Delta-maintenance vs full-re-prepare crossover sweep for src/stream/.
//
// For each dataset, seeds a stream::DynamicGraph from the prepared DAG and
// drives deterministic mixed insert/delete churn (stream::ChurnGenerator)
// at a range of batch sizes. Each row reports the mean host-side commit
// cost per batch against the dataset's measured full-re-prepare cost (the
// generate/clean/orient/reference pipeline a non-incremental server would
// rerun per batch), plus the simulated delta-kernel time. The sweep ends
// with the per-dataset crossover batch size — the smallest swept batch
// where a delta commit stops beating a full re-prepare (the paper-scale
// graphs stay delta-favored well past thousand-edge batches).
//
// Every (dataset, batch) cell ends with an exact cross-check: the
// maintained count must equal a fresh CPU forward count of the final
// snapshot's materialized DAG — any mismatch exits 1, so the bench doubles
// as a correctness gate.
//
// Flags: the shared set (--datasets, --max-edges, --seed, --csv/--json, ...)
// plus --mutations=N (ops per cell), --stream-batch=a,b,c (batch sizes to
// sweep), --snapshots=N (history depth), and --quick (small CI shape).
//
// Try: stream_churn --datasets=As-Caida,Soc-Pokec,Com-Orkut --quick
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "framework/engine.hpp"
#include "framework/report.hpp"
#include "graph/cpu_reference.hpp"
#include "stream/churn.hpp"
#include "stream/dynamic_graph.hpp"

namespace {

double wall_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tcgpu;

  // --quick is bench-local (CI shape); strip it before the shared parser.
  bool quick = false;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      quick = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  framework::BenchOptions opt;
  try {
    opt = framework::BenchOptions::parse(static_cast<int>(args.size()),
                                         args.data());
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }

  std::vector<std::string> datasets = opt.datasets;
  if (datasets.empty()) datasets = {"As-Caida", "Soc-Pokec", "Com-Orkut"};
  std::vector<std::uint64_t> batches = opt.stream_batch;
  if (batches.empty()) {
    batches = quick ? std::vector<std::uint64_t>{4, 64}
                    : std::vector<std::uint64_t>{1, 16, 128, 1024, 4096};
  }
  const std::uint64_t mutations =
      opt.mutations != 0 ? opt.mutations : (quick ? 256 : 4096);
  const std::size_t snapshots = opt.snapshots != 0 ? opt.snapshots : 4;

  framework::Engine engine(opt);
  stream::DynamicGraph::Config dyn_cfg;
  dyn_cfg.spec = engine.config().spec;
  dyn_cfg.history = snapshots;

  framework::ResultTable table({"dataset", "batch", "rounds", "applied",
                                "skipped", "mean_commit_ms", "kernel_ms",
                                "reprepare_ms", "speedup"});
  std::vector<std::string> crossover_lines;
  bool all_exact = true;

  for (const auto& name : datasets) {
    framework::Engine::GraphHandle pg;
    try {
      pg = engine.prepare(name);
    } catch (const std::exception& e) {
      std::cerr << e.what() << '\n';
      return 2;
    }

    // The non-incremental baseline: what answering after a batch costs when
    // the whole pipeline reruns. Measured fresh (uncached) per dataset.
    const auto spec = gen::dataset_by_name(name);
    const auto rp0 = std::chrono::steady_clock::now();
    const auto reprep = framework::prepare_dataset(spec, opt.max_edges,
                                                   opt.seed);
    const double reprepare_ms = wall_ms_since(rp0);
    if (reprep.reference_triangles != pg->reference_triangles) {
      std::cerr << name << ": re-prepare count drifted\n";
      return 1;
    }

    std::uint64_t crossover = 0;
    for (const auto batch : batches) {
      stream::DynamicGraph dyn(pg->dag, dyn_cfg);
      stream::ChurnGenerator churn(opt.seed ^ dyn.triangles());
      const std::uint64_t rounds =
          std::max<std::uint64_t>(1, mutations / batch);

      double commit_ms = 0.0;
      double kernel_ms = 0.0;
      std::uint64_t applied = 0;
      std::uint64_t skipped = 0;
      for (std::uint64_t r = 0; r < rounds; ++r) {
        const auto ops = churn.next_batch(*dyn.snapshot(),
                                          static_cast<std::size_t>(batch));
        const auto t0 = std::chrono::steady_clock::now();
        const auto cr = dyn.commit(ops);
        commit_ms += wall_ms_since(t0);
        kernel_ms += cr.stats.time_ms;
        applied += cr.inserted + cr.removed;
        skipped += cr.skipped;
      }
      const double mean_ms = commit_ms / static_cast<double>(rounds);

      // Exact-maintenance gate: the maintained count vs a fresh CPU count
      // of the final snapshot, every cell.
      const auto snap = dyn.snapshot();
      const std::uint64_t fresh =
          graph::count_triangles_forward(snap->materialize_dag());
      if (fresh != dyn.triangles()) {
        std::cerr << name << " batch=" << batch
                  << ": maintained count " << dyn.triangles()
                  << " != fresh recount " << fresh << '\n';
        all_exact = false;
      }

      if (crossover == 0 && mean_ms >= reprepare_ms) crossover = batch;
      table.add_row({name, std::to_string(batch), std::to_string(rounds),
                     std::to_string(applied), std::to_string(skipped),
                     framework::ResultTable::fmt(mean_ms, 4),
                     framework::ResultTable::fmt(kernel_ms, 4),
                     framework::ResultTable::fmt(reprepare_ms, 4),
                     framework::ResultTable::fmt(
                         mean_ms > 0.0 ? reprepare_ms / mean_ms : 0.0, 1)});
    }
    crossover_lines.push_back(
        "# " + name + " crossover: " +
        (crossover == 0 ? "none (delta wins at every swept batch size)"
                        : "batch >= " + std::to_string(crossover)));
  }

  framework::emit(table, opt, std::cout,
                  "Delta commit vs full re-prepare (" +
                      std::to_string(mutations) + " ops/cell, seed " +
                      std::to_string(opt.seed) + ", edge cap " +
                      std::to_string(opt.max_edges) + ")");
  if (!opt.csv && !opt.json) {
    for (const auto& line : crossover_lines) std::cout << line << '\n';
  }

  if (!all_exact) return 1;
  return engine.exit_code();
}
