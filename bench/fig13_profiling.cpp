// Figure 13: (a) warp_execution_efficiency and (b)
// gld_transactions_per_request for every implementation over the 19
// datasets — the workload-imbalance and memory-access-pattern factors of
// the paper's analysis (expected: Hu/TRUST/GroupTC near-perfect efficiency,
// Bisson/Polak lowest; hash/fine-grained codes lowest tx/req, Polak and
// GroupTC highest).
#include <iostream>

#include "framework/engine.hpp"
#include "framework/report.hpp"

int main(int argc, char** argv) {
  using namespace tcgpu;
  framework::BenchOptions opt;
  try {
    opt = framework::BenchOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }

  const auto& algos = framework::all_algorithms();
  framework::Engine engine(opt);
  const auto rows = engine.sweep(algos, std::cerr);

  std::vector<std::string> cols = {"dataset"};
  for (const auto& a : algos) cols.push_back(a.name);

  framework::ResultTable eff(cols);
  for (const auto& row : rows) {
    std::vector<std::string> cells = {row.graph->name};
    for (const auto& out : row.outcomes) {
      cells.push_back(framework::ResultTable::fmt(
          out.result.total.metrics.warp_execution_efficiency() * 100.0, 1));
    }
    eff.add_row(std::move(cells));
  }
  framework::emit(eff, opt, std::cout,
                  "Figure 13(a): warp execution efficiency (%), " + opt.gpu +
                      ", edge cap " + std::to_string(opt.max_edges));

  std::cout << '\n';
  framework::ResultTable tx(cols);
  for (const auto& row : rows) {
    std::vector<std::string> cells = {row.graph->name};
    for (const auto& out : row.outcomes) {
      cells.push_back(framework::ResultTable::fmt(
          out.result.total.metrics.gld_transactions_per_request(), 2));
    }
    tx.add_row(std::move(cells));
  }
  framework::emit(tx, opt, std::cout, "Figure 13(b): gld_transactions_per_request");
  return engine.exit_code();
}
