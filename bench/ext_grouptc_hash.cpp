// Extension experiment (§VI future work): GroupTC-H — GroupTC's chunked
// scheduling with hash probes instead of binary search — against GroupTC
// and TRUST across the datasets. The paper predicts the hash probe is what
// TRUST holds over GroupTC on large high-degree graphs; this harness
// measures whether grafting it onto the chunked schedule closes that gap.
#include <iostream>

#include "framework/engine.hpp"
#include "framework/report.hpp"

int main(int argc, char** argv) {
  using namespace tcgpu;
  framework::BenchOptions opt;
  try {
    opt = framework::BenchOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }

  std::vector<framework::AlgorithmEntry> algos;
  for (const auto& e : framework::extended_algorithms()) {
    if (e.name == "TRUST" || e.name == "GroupTC" || e.name == "GroupTC-H") {
      algos.push_back(e);
    }
  }
  framework::Engine engine(opt);
  const auto rows = engine.sweep(algos, std::cerr);

  framework::ResultTable table({"dataset", "avg_deg", "TRUST", "GroupTC",
                                "GroupTC-H", "H/base", "H/TRUST"});
  for (const auto& row : rows) {
    const double trust = row.outcomes[0].result.total.time_ms;
    const double base = row.outcomes[1].result.total.time_ms;
    const double hash = row.outcomes[2].result.total.time_ms;
    table.add_row({row.graph->name,
                   framework::ResultTable::fmt(row.graph->stats.avg_degree, 1),
                   framework::ResultTable::fmt(trust, 4),
                   framework::ResultTable::fmt(base, 4),
                   framework::ResultTable::fmt(hash, 4),
                   framework::ResultTable::fmt(base / hash, 2) + "x",
                   framework::ResultTable::fmt(trust / hash, 2) + "x"});
  }
  framework::emit(table, opt, std::cout,
                  "Extension: GroupTC-H vs GroupTC vs TRUST (ms), " + opt.gpu +
                      ", edge cap " + std::to_string(opt.max_edges));
  return engine.exit_code();
}
