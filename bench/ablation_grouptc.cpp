// Ablation of GroupTC's design choices (§V): the three optimizations
// individually disabled, the chunk/block size, and the flip-ratio threshold
// of the search-table flip heuristic whose exact value the paper leaves to
// "empirical evidence". Run on a medium dataset (default As-Skitter).
// All variants share one engine-resident graph: one prepare, one upload.
#include <iostream>

#include "framework/engine.hpp"
#include "framework/report.hpp"
#include "tc/grouptc.hpp"

int main(int argc, char** argv) {
  using namespace tcgpu;
  framework::BenchOptions opt;
  try {
    opt = framework::BenchOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }
  const std::string dataset = opt.datasets.empty() ? "As-Skitter" : opt.datasets[0];
  framework::Engine engine(opt);
  const auto pg = engine.prepare(dataset);

  struct Variant {
    std::string name;
    tc::GroupTcCounter::Config cfg;
  };
  std::vector<Variant> variants;
  variants.push_back({"baseline (all opts, chunk 256)", {}});
  {
    tc::GroupTcCounter::Config c;
    c.prefix_skip = false;
    variants.push_back({"- opt1 (no u<v prefix skip)", c});
  }
  {
    tc::GroupTcCounter::Config c;
    c.monotone_offset = false;
    variants.push_back({"- opt2 (no monotone offset)", c});
  }
  {
    tc::GroupTcCounter::Config c;
    c.table_flip = false;
    variants.push_back({"- opt3 (no table flip)", c});
  }
  {
    tc::GroupTcCounter::Config c;
    c.prefix_skip = c.monotone_offset = c.table_flip = false;
    variants.push_back({"no optimizations", c});
  }
  for (const std::uint32_t chunk : {64u, 128u, 512u, 1024u}) {
    tc::GroupTcCounter::Config c;
    c.block = chunk;
    variants.push_back({"chunk " + std::to_string(chunk), c});
  }
  for (const std::uint32_t ratio : {2u, 8u, 16u}) {
    tc::GroupTcCounter::Config c;
    c.flip_ratio = ratio;
    variants.push_back({"flip_ratio " + std::to_string(ratio), c});
  }

  framework::ResultTable table(
      {"variant", "time_ms", "valid", "gld_requests", "warp_eff_pct"});
  for (const auto& v : variants) {
    const auto out = engine.run(tc::GroupTcCounter(v.cfg), pg);
    table.add_row({v.name, framework::ResultTable::fmt(out.result.total.time_ms, 4),
                   out.valid ? "yes" : "NO",
                   std::to_string(out.result.total.metrics.global_load_requests),
                   framework::ResultTable::fmt(
                       out.result.total.metrics.warp_execution_efficiency() * 100, 1)});
  }
  framework::emit(table, opt, std::cout,
                  "GroupTC ablation on " + dataset + " (E=" +
                      std::to_string(pg->stats.num_undirected_edges) + ")");
  return engine.exit_code();
}
