// Simulator hot-path microbenchmark: events/sec and ns/access through the
// full ThreadCtx -> LaneTrace -> WarpAggregator pipeline, on three synthetic
// kernels chosen to pin the pipeline's three regimes:
//
//   * converged    — every lane issues the identical site sequence (the
//                    common case; exercises the flush fast path);
//   * divergent    — per-lane trip counts differ (forces the counting-sort
//                    path and occurrence alignment);
//   * atomic_heavy — global + shared atomics (serialization costs).
//
// Emits JSON so the perf trajectory is tracked across PRs; --check compares
// events/sec against a checked-in baseline and fails on >25% regression
// (the CI sim-throughput gate).
//
// Flags: --quick            smaller grids, CI-friendly runtimes
//        --out=PATH         write the JSON report to PATH
//        --check=PATH       compare against a baseline JSON, exit 1 on regression
//        --repeats=N        timing repeats per workload (default 3, best-of)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "simt/device.hpp"
#include "simt/launch.hpp"

namespace {

using namespace tcgpu;

struct WorkloadResult {
  std::string name;
  std::uint64_t events = 0;  ///< metered lane accesses per run
  double seconds = 0.0;      ///< best-of-repeats wall clock for one run
  double events_per_sec() const { return static_cast<double>(events) / seconds; }
  double ns_per_access() const { return seconds * 1e9 / static_cast<double>(events); }
};

/// Times one launch closure: returns best-of-`repeats` seconds and the
/// event count (identical across repeats — the simulator is deterministic).
template <class Fn>
WorkloadResult time_workload(const std::string& name, int repeats, Fn&& run) {
  WorkloadResult r;
  r.name = name;
  r.seconds = 1e100;
  for (int i = 0; i < repeats; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    const simt::KernelStats stats = run();
    const auto t1 = std::chrono::steady_clock::now();
    // No compute() in these kernels, so every active lane step is exactly
    // one metered access event.
    r.events = stats.metrics.active_lane_steps;
    r.seconds = std::min(r.seconds, std::chrono::duration<double>(t1 - t0).count());
  }
  return r;
}

simt::KernelStats run_converged(const simt::GpuSpec& spec, simt::Device& dev,
                                std::uint64_t items, std::uint32_t reps) {
  auto data = dev.alloc<std::uint32_t>(1 << 20, "bench_data");
  auto out = dev.alloc<std::uint32_t>(1 << 16, "bench_out");
  simt::LaunchConfig cfg{spec.sm_count * 4, 256, 1};
  return simt::launch_items<simt::NoState>(
      spec, cfg, items,
      [&](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t item) {
        std::uint32_t acc = 0;
        const std::uint64_t base = item * 7;
        for (std::uint32_t r = 0; r < reps; ++r) {
          acc += ctx.load(data, (base + r) & ((1 << 20) - 1), TCGPU_SITE());
        }
        ctx.store(out, item & ((1 << 16) - 1), acc, TCGPU_SITE());
      });
}

simt::KernelStats run_divergent(const simt::GpuSpec& spec, simt::Device& dev,
                                std::uint64_t items, std::uint32_t reps) {
  auto data = dev.alloc<std::uint32_t>(1 << 20, "bench_data");
  auto out = dev.alloc<std::uint32_t>(1 << 16, "bench_out");
  simt::LaunchConfig cfg{spec.sm_count * 4, 256, 1};
  return simt::launch_items<simt::NoState>(
      spec, cfg, items,
      [&](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t item) {
        // Lane-dependent trip count (1..reps): adjacent items diverge, so a
        // warp's lanes never share a site sequence.
        const std::uint32_t trips = 1 + static_cast<std::uint32_t>(item % reps);
        std::uint32_t acc = 0;
        const std::uint64_t base = item * 1315423911ull;
        for (std::uint32_t r = 0; r < trips; ++r) {
          acc += ctx.load(data, (base + r * 97) & ((1 << 20) - 1), TCGPU_SITE());
        }
        ctx.store(out, item & ((1 << 16) - 1), acc, TCGPU_SITE());
      });
}

simt::KernelStats run_atomic_heavy(const simt::GpuSpec& spec, simt::Device& dev,
                                   std::uint64_t items, std::uint32_t reps) {
  auto data = dev.alloc<std::uint32_t>(1 << 20, "bench_data");
  auto counters = dev.alloc<std::uint64_t>(1 << 10, "bench_counters");
  simt::LaunchConfig cfg{spec.sm_count * 4, 256, 32};
  return simt::launch_items<simt::NoState>(
      spec, cfg, items,
      [&](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t item) {
        auto tallies = ctx.shared_array_tagged<std::uint32_t>(0, 256);
        const std::uint32_t lane = ctx.group_lane();
        std::uint64_t acc = 0;
        for (std::uint32_t r = 0; r < reps; ++r) {
          acc += ctx.load(data, (item * 31 + r) & ((1 << 20) - 1), TCGPU_SITE());
          ctx.shared_atomic_add(tallies, (lane * 5 + r) & 255u, 1u, TCGPU_SITE());
        }
        ctx.atomic_add(counters, (item * 13) & 1023u, acc, TCGPU_SITE());
      });
}

// --- minimal JSON helpers (format is ours on both ends) --------------------

std::string to_json(const std::vector<WorkloadResult>& results) {
  std::ostringstream os;
  os << "{\n  \"bench\": \"sim_overhead\",\n  \"workloads\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"events\": %llu, \"seconds\": %.6f, "
                  "\"events_per_sec\": %.0f, \"ns_per_access\": %.2f}%s\n",
                  r.name.c_str(), static_cast<unsigned long long>(r.events),
                  r.seconds, r.events_per_sec(), r.ns_per_access(),
                  i + 1 < results.size() ? "," : "");
    os << buf;
  }
  os << "  ]\n}\n";
  return os.str();
}

/// Pulls "name" -> events_per_sec pairs out of a sim_overhead JSON report.
/// Deliberately tiny: the format is produced by to_json above.
bool parse_baseline(const std::string& path,
                    std::vector<std::pair<std::string, double>>& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    const auto name_at = line.find("\"name\": \"");
    const auto eps_at = line.find("\"events_per_sec\": ");
    if (name_at == std::string::npos || eps_at == std::string::npos) continue;
    const auto name_begin = name_at + 9;
    const auto name_end = line.find('"', name_begin);
    if (name_end == std::string::npos) continue;
    const double eps = std::atof(line.c_str() + eps_at + 18);
    out.emplace_back(line.substr(name_begin, name_end - name_begin), eps);
  }
  return !out.empty();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  int repeats = 3;
  std::string out_path;
  std::string check_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--check=", 0) == 0) {
      check_path = arg.substr(8);
    } else if (arg.rfind("--repeats=", 0) == 0) {
      repeats = std::atoi(arg.c_str() + 10);
      if (repeats < 1) repeats = 1;
    } else {
      std::cerr << "unknown flag: " << arg
                << " (valid: --quick --out=PATH --check=PATH --repeats=N)\n";
      return 2;
    }
  }

  const simt::GpuSpec spec = simt::GpuSpec::v100();
  const std::uint64_t items = quick ? 40'000 : 400'000;
  const std::uint32_t reps = 24;

  std::vector<WorkloadResult> results;
  {
    simt::Device dev;
    results.push_back(time_workload("converged", repeats, [&] {
      return run_converged(spec, dev, items, reps);
    }));
  }
  {
    simt::Device dev;
    results.push_back(time_workload("divergent", repeats, [&] {
      return run_divergent(spec, dev, items, reps);
    }));
  }
  {
    simt::Device dev;
    results.push_back(time_workload("atomic_heavy", repeats, [&] {
      return run_atomic_heavy(spec, dev, items / 8, reps);
    }));
  }

  std::printf("%-14s %14s %10s %16s %12s\n", "workload", "events", "sec",
              "events/sec", "ns/access");
  for (const auto& r : results) {
    std::printf("%-14s %14llu %10.4f %16.0f %12.2f\n", r.name.c_str(),
                static_cast<unsigned long long>(r.events), r.seconds,
                r.events_per_sec(), r.ns_per_access());
  }

  const std::string json = to_json(results);
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << json;
    if (!out) {
      std::cerr << "failed to write " << out_path << '\n';
      return 1;
    }
    std::cerr << "wrote " << out_path << '\n';
  }

  if (!check_path.empty()) {
    std::vector<std::pair<std::string, double>> baseline;
    if (!parse_baseline(check_path, baseline)) {
      std::cerr << "failed to parse baseline " << check_path << '\n';
      return 2;
    }
    constexpr double kAllowedRegression = 0.25;
    bool ok = true;
    for (const auto& [name, base_eps] : baseline) {
      const auto it = std::find_if(results.begin(), results.end(),
                                   [&](const auto& r) { return r.name == name; });
      if (it == results.end()) {
        std::cerr << "baseline workload missing from run: " << name << '\n';
        ok = false;
        continue;
      }
      const double floor = base_eps * (1.0 - kAllowedRegression);
      const bool pass = it->events_per_sec() >= floor;
      std::fprintf(stderr, "check %-14s %16.0f ev/s vs baseline %16.0f (floor %16.0f) %s\n",
                   name.c_str(), it->events_per_sec(), base_eps, floor,
                   pass ? "ok" : "REGRESSED");
      ok = ok && pass;
    }
    if (!ok) return 1;
  }
  return 0;
}
