// Figure 11: total running time of all eight published ITC implementations
// over the 19 datasets (ordered by increasing edge count), on the simulated
// V100. One row per dataset, one column per algorithm, in milliseconds of
// modeled kernel time; the winner per row is flagged.
//
// Expected shape (EXPERIMENTS.md records the outcome): Polak wins the small
// low-degree datasets, TRUST wins from the medium datasets on, Bisson and
// Green trail everywhere.
#include <iostream>

#include "framework/engine.hpp"
#include "framework/registry.hpp"
#include "framework/report.hpp"

int main(int argc, char** argv) {
  using namespace tcgpu;
  framework::BenchOptions opt;
  try {
    opt = framework::BenchOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }

  // Default: the paper's Figure 11 set. --algos widens (or narrows) the
  // sweep to any registered kernels, e.g. the 12-kernel selection pool.
  std::vector<framework::AlgorithmEntry> algos = framework::all_algorithms();
  if (!opt.algos.empty()) {
    algos.clear();
    for (const auto& name : opt.algos) {
      for (const auto& e : framework::extended_algorithms()) {
        if (e.name == name) algos.push_back(e);
      }
    }
  }
  framework::Engine engine(opt);
  const auto rows = engine.sweep(algos, std::cerr);

  std::vector<std::string> cols = {"dataset", "E", "avg_deg"};
  for (const auto& a : algos) cols.push_back(a.name);
  cols.push_back("winner");
  framework::ResultTable table(cols);

  for (const auto& row : rows) {
    std::vector<std::string> cells = {
        row.graph->name, std::to_string(row.graph->stats.num_undirected_edges),
        framework::ResultTable::fmt(row.graph->stats.avg_degree, 1)};
    std::size_t best = 0;
    for (std::size_t i = 0; i < row.outcomes.size(); ++i) {
      const auto& out = row.outcomes[i];
      cells.push_back(framework::ResultTable::fmt(out.result.total.time_ms, 4) +
                      (out.valid ? "" : "!"));
      if (out.result.total.time_ms < row.outcomes[best].result.total.time_ms) {
        best = i;
      }
    }
    cells.push_back(algos[best].name);
    table.add_row(std::move(cells));
  }
  framework::emit(table, opt, std::cout,
                  "Figure 11: kernel running time (ms), " + opt.gpu +
                      ", edge cap " + std::to_string(opt.max_edges));
  if (!engine.all_valid()) {
    std::cerr << "WARNING: at least one count mismatched the CPU reference\n";
  }
  return engine.exit_code();
}
