// Table I: the taxonomy of major GPU ITC algorithms (reference, name, year,
// iterator, intersection method, execution granularity), generated from the
// registry's live metadata rather than hard-coded prose — if an algorithm's
// traits change, this table changes with it.
#include <iostream>

#include "framework/registry.hpp"
#include "framework/report.hpp"

int main(int argc, char** argv) {
  using namespace tcgpu;
  framework::BenchOptions opt;
  try {
    opt = framework::BenchOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }

  framework::ResultTable table({"Name", "Year", "Iterator", "Intersection",
                                "Granularity"});
  for (const auto& entry : framework::all_algorithms()) {
    const auto algo = entry.make();
    const tc::AlgoTraits t = algo->traits();
    table.add_row({entry.name, std::to_string(t.year), t.iterator, t.intersection,
                   t.granularity});
  }
  framework::emit(table, opt, std::cout, "Table I: major ITC algorithms on GPUs");
  return 0;
}
