// Table I: the taxonomy of major GPU ITC algorithms (reference, name, year,
// iterator, intersection method, execution granularity), generated from the
// registry's live metadata rather than hard-coded prose — if an algorithm's
// traits change, this table changes with it.
#include <iostream>

#include "framework/registry.hpp"
#include "framework/table.hpp"

int main(int argc, char** argv) {
  using namespace tcgpu;
  const bool csv = argc > 1 && std::string(argv[1]) == "--csv";

  std::cout << "== Table I: major ITC algorithms on GPUs ==\n";
  framework::ResultTable table({"Name", "Year", "Iterator", "Intersection",
                                "Granularity"});
  for (const auto& entry : framework::all_algorithms()) {
    const auto algo = entry.make();
    const tc::AlgoTraits t = algo->traits();
    table.add_row({entry.name, std::to_string(t.year), t.iterator, t.intersection,
                   t.granularity});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print_aligned(std::cout);
  }
  return 0;
}
