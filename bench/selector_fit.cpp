// Calibration fitter for serve::Selector.
//
// Runs the twelve-kernel selection pool over the dataset suite, compares the
// simulator's measured kernel time against the selector's raw (uncalibrated)
// cost model, and prints the per-algorithm calibration constant — the
// geometric mean of measured/modeled work time — in a form ready to paste
// into Selector::default_models(). A second pass re-scores the suite with
// the fitted constants and reports selection accuracy: for each dataset,
// whether the selector's pick lands within 10% of the measured per-graph
// best (the acceptance bar tests/serve/test_selector_accuracy enforces).
#include <cmath>
#include <iostream>
#include <map>
#include <vector>

#include "framework/engine.hpp"
#include "framework/report.hpp"
#include "serve/selector.hpp"

int main(int argc, char** argv) {
  using namespace tcgpu;
  framework::BenchOptions opt;
  try {
    opt = framework::BenchOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }

  framework::Engine engine(opt);
  const auto& algos = framework::pool_algorithms();
  const auto rows = engine.sweep(algos, std::cerr);

  // Raw model: calibration forced to 1, refinement off.
  auto raw_models = serve::Selector::default_models();
  for (auto& m : raw_models) m.calibration = 1.0;
  serve::Selector raw(raw_models,
                      serve::Selector::Config{engine.config().spec, false});

  // Fit: per algorithm, geometric mean of measured/modeled work time.
  std::map<std::string, std::pair<double, std::size_t>> log_ratio;  // sum, n
  for (const auto& row : rows) {
    const auto ranked = raw.score(row.graph->stats);
    for (const auto& out : row.outcomes) {
      for (const auto& c : ranked) {
        if (c.algorithm != out.algorithm) continue;
        const double modeled = c.cost.modeled_ms - c.cost.launch_ms;
        const double measured = out.result.total.time_ms - c.cost.launch_ms;
        if (modeled > 0.0 && measured > 0.0) {
          auto& [sum, n] = log_ratio[out.algorithm];
          sum += std::log(measured / modeled);
          ++n;
        }
        break;
      }
    }
  }

  // Residuals: per cell, measured work time / raw modeled work time. A flat
  // column means the algorithm's work shape is right and calibration alone
  // fixes the scale; a trending column means a shape term is off.
  {
    std::vector<std::string> cols = {"dataset", "n", "m", "davg", "s2", "skew"};
    for (const auto& a : algos) cols.push_back(a.name);
    framework::ResultTable resid(cols);
    for (const auto& row : rows) {
      const auto& st = row.graph->stats;
      std::vector<std::string> cells = {
          row.graph->name, std::to_string(st.num_vertices),
          std::to_string(st.num_undirected_edges),
          framework::ResultTable::fmt(st.avg_out_degree, 2),
          std::to_string(st.sum_out_degree_sq),
          framework::ResultTable::fmt(st.out_degree_skew, 1)};
      const auto ranked = raw.score(st);
      for (const auto& out : row.outcomes) {
        for (const auto& c : ranked) {
          if (c.algorithm != out.algorithm) continue;
          const double modeled = c.cost.modeled_ms - c.cost.launch_ms;
          const double measured = out.result.total.time_ms - c.cost.launch_ms;
          cells.push_back(modeled > 0.0 && measured > 0.0
                              ? framework::ResultTable::fmt(measured / modeled, 3)
                              : "-");
          break;
        }
      }
      resid.add_row(std::move(cells));
    }
    framework::emit(resid, opt, std::cout,
                    "Residuals: measured/modeled work time (calibration = 1)");
  }

  // Actual kernel launches per run — the model's `launches` constants must
  // match these or the fixed launch-overhead term mispredicts small graphs.
  {
    std::vector<std::string> cols = {"dataset"};
    for (const auto& a : algos) cols.push_back(a.name);
    framework::ResultTable launches(cols);
    for (const auto& row : rows) {
      std::vector<std::string> cells = {row.graph->name};
      for (const auto& out : row.outcomes) {
        cells.push_back(std::to_string(out.result.launches.size()));
      }
      launches.add_row(std::move(cells));
    }
    framework::emit(launches, opt, std::cout, "Kernel launches per run");
  }

  std::cout << "// fitted calibration (geomean measured/modeled work, "
            << rows.size() << " datasets, edge cap " << opt.max_edges
            << ", " << opt.gpu << "):\n";
  auto fitted = raw_models;
  for (auto& m : fitted) {
    const auto it = log_ratio.find(m.name);
    if (it != log_ratio.end() && it->second.second > 0) {
      m.calibration = std::exp(it->second.first /
                               static_cast<double>(it->second.second));
    }
    std::cout << "//   " << m.name << ": "
              << framework::ResultTable::fmt(m.calibration, 4) << '\n';
  }

  // Accuracy pass: score with the SHIPPED default_models() — what the
  // service actually dispatches with — and compare the pick's measured time
  // against the measured per-graph best. (The refit above is advisory: the
  // shipped calibration column additionally spreads the near-tied contenders
  // apart, so paste it back only together with a fresh accuracy check.)
  serve::Selector sel(serve::Selector::Config{engine.config().spec, false});
  framework::ResultTable table(
      {"dataset", "E", "picked", "best", "picked_ms", "best_ms", "ratio", "ok"});
  std::size_t within = 0;
  for (const auto& row : rows) {
    const auto pick = sel.choose(row.graph->stats);
    std::size_t best = 0;
    double picked_ms = -1.0;
    for (std::size_t i = 0; i < row.outcomes.size(); ++i) {
      const double t = row.outcomes[i].result.total.time_ms;
      if (t < row.outcomes[best].result.total.time_ms) best = i;
      if (row.outcomes[i].algorithm == pick.algorithm) picked_ms = t;
    }
    const double best_ms = row.outcomes[best].result.total.time_ms;
    const double ratio = picked_ms / best_ms;
    const bool ok = ratio <= 1.10;
    if (ok) ++within;
    table.add_row({row.graph->name,
                   std::to_string(row.graph->stats.num_undirected_edges),
                   pick.algorithm, row.outcomes[best].algorithm,
                   framework::ResultTable::fmt(picked_ms, 4),
                   framework::ResultTable::fmt(best_ms, 4),
                   framework::ResultTable::fmt(ratio, 3), ok ? "yes" : "NO"});
  }
  framework::emit(table, opt, std::cout,
                  "Selector fit: picks within 10% of best on " +
                      std::to_string(within) + "/" +
                      std::to_string(rows.size()) + " datasets");
  return engine.exit_code();
}
