// Bisson's bitmap-placement cliff: the algorithm keeps its V-bit bitmap in
// shared memory only while V bits fit (§III-C "when allowed by size").
// Downscaled datasets have small V, so the shared path makes Bisson look
// far better than the paper's full-scale measurements — this harness makes
// that effect measurable instead of anecdotal by sweeping V at a constant
// average degree and printing the shared/global split. Each generated graph
// is prepared once and its DAG shared by both counters via the engine pool.
#include <iostream>

#include "framework/engine.hpp"
#include "framework/report.hpp"
#include "gen/rmat.hpp"
#include "tc/bisson.hpp"
#include "tc/polak.hpp"

int main(int argc, char** argv) {
  using namespace tcgpu;
  framework::BenchOptions opt;
  try {
    opt = framework::BenchOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }
  framework::Engine engine(opt);
  const auto& gpu = engine.config().spec;
  const std::uint32_t shared_limit_v = gpu.shared_mem_per_block * 8;  // bits

  framework::ResultTable table({"V_target", "V", "E", "bitmap", "Bisson_ms",
                                "Polak_ms", "Bisson/Polak"});
  for (const std::uint32_t v_target :
       {20'000u, 100'000u, 300'000u, 500'000u, 700'000u}) {
    gen::RmatParams p;
    p.scale = 21;
    p.fold_to = v_target;
    p.edges = static_cast<std::uint64_t>(v_target) * 4;  // avg degree ~8
    const auto pg = engine.prepare_raw("rmat_v" + std::to_string(v_target),
                                       gen::generate_rmat(p, opt.seed));
    tc::BissonCounter::Config bc;
    bc.block_threshold = 0.0;  // always the block/bitmap path
    const auto bisson = engine.run(tc::BissonCounter(bc), pg);
    const auto polak = engine.run(tc::PolakCounter(), pg);
    const bool in_shared = pg->stats.num_vertices <= shared_limit_v;
    table.add_row(
        {std::to_string(v_target), std::to_string(pg->stats.num_vertices),
         std::to_string(pg->stats.num_undirected_edges),
         in_shared ? "shared" : "global",
         framework::ResultTable::fmt(bisson.result.total.time_ms, 4),
         framework::ResultTable::fmt(polak.result.total.time_ms, 4),
         framework::ResultTable::fmt(
             bisson.result.total.time_ms / polak.result.total.time_ms, 2)});
    if (!bisson.valid || !polak.valid) {
      std::cerr << "count mismatch!\n";
      return 1;
    }
  }
  framework::emit(table, opt, std::cout,
                  "Bisson bitmap placement vs graph size (avg degree ~8; "
                  "shared bitmap fits while V <= " +
                      std::to_string(shared_limit_v) + ")");
  return engine.exit_code();
}
