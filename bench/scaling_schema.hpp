// The one machine-readable schema shared by the scaling benches
// (scaling_multi_gpu, scaling_cluster): both emit the same columns through
// framework::emit, so plotting and CI tooling parse one shape whether the
// sweep stayed on a single host or crossed a modeled network. Single-host
// rows carry hosts=1, zero inter_bytes, and four equal combo times (the
// flat model has nothing to aggregate or overlap).
#pragma once

#include <string>
#include <vector>

#include "dist/runner.hpp"
#include "framework/table.hpp"

namespace tcgpu::bench {

inline std::vector<std::string> scaling_columns() {
  return {"dataset",        "algorithm",    "partition",  "hosts",
          "gpus",           "interconnect", "device_ms",  "comm_ms",
          "flat_sync_ms",   "flat_overlap_ms", "agg_sync_ms",
          "agg_overlap_ms", "total_ms",     "speedup",    "pipeline_speedup",
          "imbalance",      "replication",  "ghost_bytes", "inter_bytes",
          "valid"};
}

/// One row per MultiRunResult. `interconnect` labels the topology the run
/// was priced on ("nvlink", "nvlink+ib-edr", ...). pipeline_speedup is the
/// tentpole ratio: flat synchronous scatter over buffered + overlapped
/// (1.00 on the single-host path where the four combos coincide).
inline std::vector<std::string> scaling_row(const dist::MultiRunResult& r,
                                            const std::string& interconnect) {
  using framework::ResultTable;
  const double pipeline =
      r.agg_overlap_ms > 0.0 ? r.flat_sync_ms / r.agg_overlap_ms : 0.0;
  return {r.dataset,
          r.algorithm,
          dist::to_string(r.strategy),
          std::to_string(r.hosts),
          std::to_string(r.num_devices),
          interconnect,
          ResultTable::fmt(r.device_ms, 4),
          ResultTable::fmt(r.comm_ms, 4),
          ResultTable::fmt(r.flat_sync_ms, 4),
          ResultTable::fmt(r.flat_overlap_ms, 4),
          ResultTable::fmt(r.agg_sync_ms, 4),
          ResultTable::fmt(r.agg_overlap_ms, 4),
          ResultTable::fmt(r.total_ms, 4),
          ResultTable::fmt(r.speedup, 2),
          ResultTable::fmt(pipeline, 2),
          ResultTable::fmt(r.load_imbalance, 2),
          ResultTable::fmt(r.partition.replication_factor, 2),
          std::to_string(r.ghost_exchange.bytes),
          std::to_string(r.inter_exchange.bytes),
          r.valid ? "yes" : "NO"};
}

}  // namespace tcgpu::bench
