// Multi-node scaling of the ITC kernels on the two-level modeled cluster.
//
// Sweeps hosts x devices on the largest paper graphs: each cell shards the
// prepared DAG host-aware (dist::Partitioner kHostAware — inter-host cut
// first, intra-host balance second), runs the unmodified kernel on every
// shard, and prices the ghost scatter + count all-reduce on the two-level
// simt::ClusterInterconnect (NVLink within a host, the --interconnect
// network between). Every row reports the same run under all four
// (aggregation, overlap) combinations — flat_sync_ms is what a naive
// synchronous per-row scatter pays, agg_overlap_ms the buffered + pipelined
// path — so one sweep shows the baseline and the optimization side by side.
// pipeline_speedup = flat_sync / agg_overlap is the headline column.
//
// Defaults sweep 8 devices per host across 1, 2, 4 and 8 hosts (8..64
// devices) with BSR on Soc-Pokec and Com-Orkut; --hosts=HxD pins one
// cluster shape, --gpus=N one width at the default 8-per-host, --algos and
// --datasets the usual selections. The machine-readable output shares its
// schema with scaling_multi_gpu (scaling_schema.hpp).
//
// Bench-local flags:
//   --quick   CI shape: endpoints of the sweep only (8 and 64 devices).
//   --check   gate: exit 1 unless every count matches the CPU reference
//             AND the widest cell's buffered+overlapped time beats the flat
//             synchronous baseline by >= 2x on every swept dataset.
//
// Try: scaling_cluster --datasets=Com-Orkut --interconnect=eth10g --json
#include <algorithm>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "dist/runner.hpp"
#include "framework/engine.hpp"
#include "framework/report.hpp"
#include "scaling_schema.hpp"

int main(int argc, char** argv) {
  using namespace tcgpu;

  // --quick / --check are bench-local; strip them before the shared parser.
  bool quick = false, check = false;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--check") {
      check = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  framework::BenchOptions opt;
  try {
    opt = framework::BenchOptions::parse(static_cast<int>(args.size()),
                                         args.data());
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }

  // Cluster shapes: 8 devices per host by default, hosts doubling 1 -> 8
  // (so the sweep reaches 64 modeled devices). --hosts=HxD pins one shape,
  // --hosts=H pins the host count at 8 devices each, --gpus=N (without
  // --hosts) one width at the default per-host count.
  std::vector<simt::ClusterSpec> shapes;
  const auto inter_name = opt.interconnect.empty() ? "ib-edr" : opt.interconnect;
  simt::InterconnectSpec inter;
  try {
    inter = simt::interconnect_spec_from_string(inter_name);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }
  const auto make_shape = [&](std::uint32_t hosts, std::uint32_t per_host) {
    simt::ClusterSpec cs;
    cs.name = std::to_string(hosts) + "x" + std::to_string(per_host);
    cs.hosts = hosts;
    cs.host.devices = per_host;
    cs.inter = inter;
    return cs;
  };
  if (opt.hosts != 0) {
    const std::uint32_t per_host = opt.gpus != 0 ? opt.gpus / opt.hosts : 8;
    if (per_host == 0 || (opt.gpus != 0 && opt.gpus % opt.hosts != 0)) {
      std::cerr << "--gpus must be a positive multiple of --hosts\n";
      return 2;
    }
    shapes.push_back(make_shape(opt.hosts, per_host));
  } else if (opt.gpus != 0) {
    const std::uint32_t per_host = std::min(8u, opt.gpus);
    if (opt.gpus % per_host != 0) {
      std::cerr << "--gpus must be a multiple of 8 (or < 8) without --hosts\n";
      return 2;
    }
    shapes.push_back(make_shape(opt.gpus / per_host, per_host));
  } else {
    for (const std::uint32_t hosts : {1u, 2u, 4u, 8u}) {
      if (quick && hosts != 1 && hosts != 8) continue;
      shapes.push_back(make_shape(hosts, 8));
    }
  }

  std::vector<std::string> datasets = opt.datasets;
  if (datasets.empty()) datasets = {"Soc-Pokec", "Com-Orkut"};
  std::vector<std::string> algos = opt.algos;
  if (algos.empty()) algos = {"BSR"};
  const dist::PartitionStrategy strategy =
      opt.partition.empty() ? dist::PartitionStrategy::kHostAware
                            : dist::partition_strategy_from_string(opt.partition);

  framework::Engine engine(opt);
  framework::ResultTable table(bench::scaling_columns());

  bool all_valid = true;
  // Widest cell's flat_sync / agg_overlap per dataset (the --check subject).
  std::map<std::string, double> widest_pipeline;
  std::uint32_t widest = 0;
  for (const auto& cs : shapes) widest = std::max(widest, cs.num_devices());

  for (const auto& name : datasets) {
    const auto graph = engine.prepare(name);
    std::cerr << "[cluster] " << graph->name
              << ": V=" << graph->stats.num_vertices
              << " E=" << graph->stats.num_undirected_edges
              << " tri=" << graph->reference_triangles << '\n';

    for (const auto& cs : shapes) {
      dist::MultiDeviceRunner runner(
          engine, dist::MultiRunConfig::for_cluster(cs, strategy));
      const std::string topology =
          cs.hosts > 1 ? cs.host.intra.name + "+" + cs.inter.name
                       : cs.host.intra.name;
      for (const auto& algo : algos) {
        const dist::MultiRunResult r = runner.run(algo, graph);
        all_valid &= r.valid;
        const double pipeline =
            r.agg_overlap_ms > 0.0 ? r.flat_sync_ms / r.agg_overlap_ms : 0.0;
        if (r.num_devices == widest) {
          auto& worst = widest_pipeline.try_emplace(graph->name, pipeline)
                            .first->second;
          worst = std::min(worst, pipeline);
        }

        std::cerr << "  " << r.algorithm << " " << cs.name << " ("
                  << topology << "): flat_sync " << r.flat_sync_ms
                  << " ms -> agg_overlap " << r.agg_overlap_ms << " ms ("
                  << pipeline << "x), speedup " << r.speedup
                  << (r.valid ? "" : "  ** COUNT MISMATCH **") << '\n';

        table.add_row(bench::scaling_row(r, topology));
      }
    }
  }

  framework::emit(table, opt, std::cout,
                  "Multi-node cluster scaling (modeled " + inter_name +
                      " between hosts), " + opt.gpu + ", edge cap " +
                      std::to_string(opt.max_edges));

  int rc = 0;
  if (!all_valid) {
    std::cerr << "CHECK FAIL: at least one aggregated count mismatched the "
                 "CPU reference\n";
    rc = 1;
  }
  if (check) {
    for (const auto& [name, pipeline] : widest_pipeline) {
      if (widest > 1 && pipeline < 2.0) {
        std::cerr << "CHECK FAIL: " << name << " at " << widest
                  << " devices: buffered+overlapped beats flat synchronous "
                     "by only "
                  << pipeline << "x (< 2x)\n";
        rc = 1;
      }
    }
    if (rc == 0) {
      std::cerr << "CHECK OK: all counts exact";
      if (widest > 1) {
        std::cerr << "; >= 2x pipeline speedup at " << widest << " devices";
      }
      std::cerr << '\n';
    }
  }
  return rc;
}
